// Bit-true mini-float format tests: encode/decode round trips, rounding,
// special values, and arithmetic identities.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "softfloat/minifloat.h"
#include "softfloat/packed.h"

namespace tsim::sf {
namespace {

TEST(F16, EncodesKnownConstants) {
  EXPECT_EQ(F16::from_double(0.0), 0x0000u);
  EXPECT_EQ(F16::from_double(-0.0), 0x8000u);
  EXPECT_EQ(F16::from_double(1.0), 0x3C00u);
  EXPECT_EQ(F16::from_double(-1.0), 0xBC00u);
  EXPECT_EQ(F16::from_double(2.0), 0x4000u);
  EXPECT_EQ(F16::from_double(0.5), 0x3800u);
  EXPECT_EQ(F16::from_double(65504.0), 0x7BFFu);             // max normal
  EXPECT_EQ(F16::from_double(std::ldexp(1.0, -24)), 0x0001u);  // min subnormal
  EXPECT_EQ(F16::from_double(std::ldexp(1.0, -26)), 0x0000u);  // below half of it
}

TEST(F16, DecodesKnownConstants) {
  EXPECT_DOUBLE_EQ(F16::to_double(0x3C00), 1.0);
  EXPECT_DOUBLE_EQ(F16::to_double(0x4000), 2.0);
  EXPECT_DOUBLE_EQ(F16::to_double(0x3555), 0.333251953125);
  EXPECT_DOUBLE_EQ(F16::to_double(0x0001), std::ldexp(1.0, -24));  // min subnormal
  EXPECT_DOUBLE_EQ(F16::to_double(0x0400), std::ldexp(1.0, -14));  // min normal
}

TEST(F16, RoundTripsAllFiniteEncodings) {
  for (u32 enc = 0; enc < 0x10000; ++enc) {
    if (F16::is_nan(enc)) continue;
    const double d = F16::to_double(enc);
    const u32 back = F16::from_double(d);
    // -0 and +0 both decode to 0.0 but encode preserving the sign we gave.
    if (enc == 0x8000) {
      EXPECT_EQ(back, 0x8000u);
    } else {
      EXPECT_EQ(back, enc) << "enc=0x" << std::hex << enc;
    }
  }
}

TEST(F16, RoundsToNearestEven) {
  // 1.0 + 1ulp/2 rounds to even (stays 1.0).
  const double one_plus_half_ulp = 1.0 + std::ldexp(1.0, -11);
  EXPECT_EQ(F16::from_double(one_plus_half_ulp), 0x3C00u);
  // The next representable tie rounds up to even.
  const double odd_tie = F16::to_double(0x3C01) + std::ldexp(1.0, -11);
  EXPECT_EQ(F16::from_double(odd_tie), 0x3C02u);
  // Slightly above the tie rounds up.
  EXPECT_EQ(F16::from_double(one_plus_half_ulp + 1e-8), 0x3C01u);
}

TEST(F16, OverflowGoesToInfinity) {
  EXPECT_EQ(F16::from_double(1e6), F16::kPosInfBits);
  EXPECT_EQ(F16::from_double(-1e6), F16::kSignBit | F16::kPosInfBits);
  EXPECT_EQ(F16::from_double(65520.0), F16::kPosInfBits);  // above max+ulp/2 tie
}

TEST(F16, SubnormalsRoundCorrectly) {
  const double min_sub = std::ldexp(1.0, -24);
  EXPECT_EQ(F16::from_double(min_sub), 0x0001u);
  EXPECT_EQ(F16::from_double(min_sub * 0.5), 0x0000u);       // tie to even -> 0
  EXPECT_EQ(F16::from_double(min_sub * 0.75), 0x0001u);      // rounds up
  EXPECT_EQ(F16::from_double(min_sub * 1.5), 0x0002u);       // tie to even -> 2
}

TEST(F16, NanAndInfHandling) {
  EXPECT_TRUE(F16::is_nan(F16::from_double(std::nan(""))));
  EXPECT_TRUE(F16::is_inf(F16::from_double(INFINITY)));
  EXPECT_TRUE(std::isnan(F16::to_double(F16::kQuietNanBits)));
  EXPECT_TRUE(std::isinf(F16::to_double(F16::kPosInfBits)));
}

TEST(F16, ArithmeticMatchesDoubleWithSingleRounding) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const u32 a = F16::from_double(rng.normal());
    const u32 b = F16::from_double(rng.normal());
    EXPECT_EQ(add<F16>(a, b), F16::from_double(F16::to_double(a) + F16::to_double(b)));
    EXPECT_EQ(mul<F16>(a, b), F16::from_double(F16::to_double(a) * F16::to_double(b)));
  }
}

TEST(F16, FmaIsFused) {
  // Choose a case where fused and unfused differ: a*b slightly above a tie.
  const u32 a = F16::from_double(1.0 + 1.0 / 1024);
  const u32 b = F16::from_double(1.0 + 1.0 / 1024);
  const u32 c = F16::from_double(std::ldexp(1.0, -20));
  const double exact = F16::to_double(a) * F16::to_double(b) + F16::to_double(c);
  EXPECT_EQ(fma<F16>(a, b, c), F16::from_double(exact));
}

TEST(F16, MinMaxIeeeSemantics) {
  const u32 one = F16::from_double(1.0);
  const u32 neg = F16::from_double(-2.0);
  EXPECT_EQ(min<F16>(one, neg), neg);
  EXPECT_EQ(max<F16>(one, neg), one);
  EXPECT_EQ(min<F16>(F16::kQuietNanBits, one), one);   // NaN loses
  EXPECT_EQ(max<F16>(one, F16::kQuietNanBits), one);
  EXPECT_EQ(min<F16>(0x8000u, 0x0000u), 0x8000u);      // -0 < +0
}

TEST(F16, Comparisons) {
  const u32 a = F16::from_double(1.5), b = F16::from_double(2.5);
  EXPECT_TRUE(lt<F16>(a, b));
  EXPECT_TRUE(le<F16>(a, a));
  EXPECT_TRUE(eq<F16>(b, b));
  EXPECT_FALSE(eq<F16>(F16::kQuietNanBits, F16::kQuietNanBits));
  EXPECT_FALSE(lt<F16>(F16::kQuietNanBits, a));
}

TEST(F16, Classify) {
  EXPECT_EQ(F16::classify(0x3C00), static_cast<u32>(FpClass::kPosNormal));
  EXPECT_EQ(F16::classify(0xBC00), static_cast<u32>(FpClass::kNegNormal));
  EXPECT_EQ(F16::classify(0x0000), static_cast<u32>(FpClass::kPosZero));
  EXPECT_EQ(F16::classify(0x8000), static_cast<u32>(FpClass::kNegZero));
  EXPECT_EQ(F16::classify(0x0001), static_cast<u32>(FpClass::kPosSubnormal));
  EXPECT_EQ(F16::classify(0x7C00), static_cast<u32>(FpClass::kPosInf));
  EXPECT_EQ(F16::classify(0x7E00), static_cast<u32>(FpClass::kQuietNan));
  EXPECT_EQ(F16::classify(0x7D00), static_cast<u32>(FpClass::kSignalingNan));
}

template <typename Fmt>
class MiniFormatTest : public ::testing::Test {};

using Formats = ::testing::Types<F8E4M3, F8E5M2, F8E4M2>;
TYPED_TEST_SUITE(MiniFormatTest, Formats);

TYPED_TEST(MiniFormatTest, RoundTripsAllFiniteEncodings) {
  using Fmt = TypeParam;
  for (u32 enc = 0; enc < (1u << Fmt::kBits); ++enc) {
    if (Fmt::is_nan(enc)) continue;
    const double d = Fmt::to_double(enc);
    const u32 back = Fmt::from_double(d);
    if (Fmt::is_zero(enc) && Fmt::sign_of(enc)) {
      EXPECT_EQ(back, enc);
    } else {
      EXPECT_EQ(back, enc) << "enc=" << enc;
    }
  }
}

TYPED_TEST(MiniFormatTest, OneIsExact) {
  using Fmt = TypeParam;
  EXPECT_DOUBLE_EQ(Fmt::to_double(Fmt::from_double(1.0)), 1.0);
}

TYPED_TEST(MiniFormatTest, QuantizationErrorIsBounded) {
  using Fmt = TypeParam;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform() * 2.0 + 0.25;  // stay in normal range
    const double q = Fmt::to_double(Fmt::from_double(v));
    const double max_rel = 0.5 / ((Fmt::kMantMask + 1));  // half ulp at 1.x
    EXPECT_LE(std::abs(q - v) / v, max_rel + 1e-12);
  }
}

TEST(Packed, LaneHelpers) {
  const u32 r = pack16(0x1234, 0xABCD);
  EXPECT_EQ(lane16(r, 0), 0x1234);
  EXPECT_EQ(lane16(r, 1), 0xABCD);
  EXPECT_EQ(insert16(r, 0, 0xFFFF), 0xABCDFFFFu);
  const u32 b = pack8(1, 2, 3, 4);
  EXPECT_EQ(lane8(b, 0), 1);
  EXPECT_EQ(lane8(b, 3), 4);
  EXPECT_EQ(insert8(b, 2, 9), pack8(1, 2, 9, 4));
}

TEST(F32Classify, Basics) {
  EXPECT_EQ(classify_f32(f32_to_bits(1.0f)), static_cast<u32>(FpClass::kPosNormal));
  EXPECT_EQ(classify_f32(f32_to_bits(-0.0f)), static_cast<u32>(FpClass::kNegZero));
  EXPECT_EQ(classify_f32(0x7FC00000u), static_cast<u32>(FpClass::kQuietNan));
}

}  // namespace
}  // namespace tsim::sf
