// TeraPool model tests: topology math, address routing (interleaved and
// sequential views), NUMA latencies, MMIO side effects, host access, DMA.
#include <gtest/gtest.h>

#include <array>

#include "tera/dma.h"
#include "tera/memory.h"

namespace tsim::tera {
namespace {

TEST(Config, FullTopologyMatchesPaper) {
  const TeraPoolConfig c = TeraPoolConfig::full();
  EXPECT_EQ(c.num_cores(), 1024u);
  EXPECT_EQ(c.num_tiles(), 128u);
  EXPECT_EQ(c.l1_bytes(), 4u * 1024 * 1024);
  EXPECT_EQ(c.num_banks(), 128u * 16);
  EXPECT_EQ(c.tiles_per_group(), 32u);
}

TEST(Config, NumaLatencyHierarchy) {
  const TeraPoolConfig c = TeraPoolConfig::full();
  // Core 0 lives in tile 0, subgroup 0, group 0.
  EXPECT_EQ(c.numa_latency(0, 0), c.lat_local_tile);
  EXPECT_EQ(c.numa_latency(0, 1), c.lat_same_subgroup);   // tile 1, same subgroup
  EXPECT_EQ(c.numa_latency(0, 8), c.lat_same_group);      // subgroup 1, same group
  EXPECT_EQ(c.numa_latency(0, 32), c.lat_remote_group);   // group 1
  EXPECT_LE(c.lat_remote_group, 9u);  // paper: <9 cycles without contention
}

TEST(Config, ValidationCatchesBadShapes) {
  TeraPoolConfig c = TeraPoolConfig::tiny();
  c.banks_per_tile = 3;  // not a power of two
  EXPECT_THROW(c.validate(), SimError);
}

TEST(AddrMap, InterleavedStripesAcrossBanks) {
  const AddrMap map(TeraPoolConfig::tiny());
  const u32 nbanks = map.config().num_banks();
  // Consecutive words land in consecutive banks.
  for (u32 w = 0; w < nbanks * 2; ++w) {
    const auto r = map.route(kL1InterleavedBase + w * 4);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->space, Space::kL1);
    EXPECT_EQ(r->bank, w % nbanks);
  }
}

TEST(AddrMap, SequentialStaysInTile) {
  const TeraPoolConfig cfg = TeraPoolConfig::tiny();
  const AddrMap map(cfg);
  for (u32 tile = 0; tile < cfg.num_tiles(); ++tile) {
    const u32 base = map.tile_sequential_base(tile);
    for (u32 off = 0; off < cfg.tile_l1_bytes; off += 256) {
      const auto r = map.route(base + off);
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(r->tile, tile);
    }
  }
}

TEST(AddrMap, PhysicalWordsAreUniqueWithinEachView) {
  const TeraPoolConfig cfg = TeraPoolConfig::tiny();
  const AddrMap map(cfg);
  std::vector<bool> seen(map.l1_words(), false);
  for (u32 off = 0; off < cfg.l1_bytes(); off += 4) {
    const auto r = map.route(kL1InterleavedBase + off);
    ASSERT_TRUE(r.has_value());
    ASSERT_LT(r->phys_word, map.l1_words());
    EXPECT_FALSE(seen[r->phys_word]) << "interleaved collision at off " << off;
    seen[r->phys_word] = true;
  }
  // The sequential view is a permutation of the same physical words.
  std::fill(seen.begin(), seen.end(), false);
  for (u32 off = 0; off < cfg.l1_bytes(); off += 4) {
    const auto r = map.route(kL1SequentialBase + off);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(seen[r->phys_word]) << "sequential collision at off " << off;
    seen[r->phys_word] = true;
  }
}

TEST(AddrMap, InterleavedWordsAreHostContiguous) {
  // The de-interleaved backing layout: interleaved word wi is stored at host
  // index wi (bank striping is a routing view transform, not a storage
  // property). Host bulk accessors and the ISS's vector sweeps rely on this.
  const TeraPoolConfig cfg = TeraPoolConfig::tiny();
  const AddrMap map(cfg);
  for (u32 wi = 0; wi < cfg.l1_bytes() / 4; wi += 7) {
    const auto r = map.route(kL1InterleavedBase + wi * 4);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->phys_word, wi);
  }
}

TEST(AddrMap, SequentialAliasesSeedLayoutWordForWord) {
  // The sequential view must address the SAME physical words the seed
  // (bank-major) layout did: sequential offset -> (tile, word-in-tile wt)
  // -> bank = tile*bpt + wt%bpt, slot = wt/bpt -> interleaved word
  // slot*num_banks + bank. This is the DUT-visible aliasing contract
  // between the two L1 views; the backing-store refactor must not move it.
  const TeraPoolConfig cfg = TeraPoolConfig::tiny();
  const AddrMap map(cfg);
  const u32 nbanks = cfg.num_banks();
  for (u32 off = 0; off < cfg.l1_bytes(); off += 4 * 5) {
    const u32 tile = off / cfg.tile_l1_bytes;
    const u32 wt = (off % cfg.tile_l1_bytes) / 4;
    const u32 bank = tile * cfg.banks_per_tile + (wt % cfg.banks_per_tile);
    const u32 slot = wt / cfg.banks_per_tile;
    const u32 aliased_wi = slot * nbanks + bank;
    const auto seq = map.route(kL1SequentialBase + off);
    const auto il = map.route(kL1InterleavedBase + aliased_wi * 4);
    ASSERT_TRUE(seq.has_value() && il.has_value());
    EXPECT_EQ(seq->bank, bank);
    EXPECT_EQ(seq->tile, tile);
    EXPECT_EQ(seq->phys_word, il->phys_word) << "aliasing broken at off " << off;
    EXPECT_EQ(il->bank, bank) << "views disagree on the owning bank";
  }
}

TEST(AddrMap, NonPow2BankCountRoutesByModulo) {
  // Non-power-of-two TOTAL bank counts are legal (banks_per_tile must be a
  // power of two, the tile count need not be): groups=3 gives 12 tiles x 4
  // banks = 48. The routing falls back from mask to modulo; the contiguous
  // phys_word layout and the view aliasing hold unchanged.
  TeraPoolConfig cfg = TeraPoolConfig::tiny();
  cfg.groups = 3;
  cfg.validate();
  const u32 nbanks = cfg.num_banks();
  ASSERT_EQ(nbanks, 48u);
  ASSERT_FALSE(is_pow2(nbanks));
  const AddrMap map(cfg);
  for (u32 wi = 0; wi < nbanks * 3 + 5; ++wi) {
    const auto r = map.route(kL1InterleavedBase + wi * 4);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->bank, wi % nbanks);
    EXPECT_EQ(r->tile, (wi % nbanks) / cfg.banks_per_tile);
    EXPECT_EQ(r->phys_word, wi);
  }
  // Both views stay collision-free permutations of the physical words.
  std::vector<bool> seen(map.l1_words(), false);
  for (u32 off = 0; off < cfg.l1_bytes(); off += 4) {
    const auto r = map.route(kL1InterleavedBase + off);
    ASSERT_TRUE(r.has_value());
    ASSERT_LT(r->phys_word, map.l1_words());
    EXPECT_FALSE(seen[r->phys_word]) << "interleaved collision at off " << off;
    seen[r->phys_word] = true;
  }
  std::fill(seen.begin(), seen.end(), false);
  for (u32 off = 0; off < cfg.l1_bytes(); off += 4) {
    const auto r = map.route(kL1SequentialBase + off);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(seen[r->phys_word]) << "sequential collision at off " << off;
    seen[r->phys_word] = true;
  }
}

TEST(AddrMap, RejectsUnmappedAddresses) {
  const AddrMap map(TeraPoolConfig::tiny());
  EXPECT_FALSE(map.route(TeraPoolConfig::tiny().l1_bytes() + 0x1000).has_value());
  EXPECT_FALSE(map.route(0x7000'0000).has_value());
  EXPECT_FALSE(map.route(kMmioBase + 0x2000).has_value());
}

TEST(Memory, LoadStoreAllWidths) {
  ClusterMemory mem(TeraPoolConfig::tiny());
  EXPECT_FALSE(mem.store(0x100, 0x11223344, 4));
  EXPECT_EQ(mem.load(0x100, 4).value, 0x11223344u);
  EXPECT_EQ(mem.load(0x100, 2).value, 0x3344u);
  EXPECT_EQ(mem.load(0x102, 2).value, 0x1122u);
  EXPECT_EQ(mem.load(0x101, 1).value, 0x33u);
  // Byte store merges.
  EXPECT_FALSE(mem.store(0x101, 0xAA, 1));
  EXPECT_EQ(mem.load(0x100, 4).value, 0x1122AA44u);
  // Half store merges.
  EXPECT_FALSE(mem.store(0x102, 0xBEEF, 2));
  EXPECT_EQ(mem.load(0x100, 4).value, 0xBEEFAA44u);
}

TEST(Memory, OutOfRangeFaults) {
  ClusterMemory mem(TeraPoolConfig::tiny());
  EXPECT_TRUE(mem.load(0x7000'0000, 4).fault);
  EXPECT_TRUE(mem.store(0x7000'0000, 1, 4));
}

TEST(Memory, MmioExitAndPutcharAndWake) {
  ClusterMemory mem(TeraPoolConfig::tiny());
  u32 exit_code = 1000;
  u32 woken = 1000;
  mem.set_exit_handler([&](u32 c) { exit_code = c; });
  mem.set_wake_handler([&](u32 t) { woken = t; });
  mem.store(kMmioExit, 7, 4);
  EXPECT_EQ(exit_code, 7u);
  mem.store(kMmioPutchar, 'h', 4);
  mem.store(kMmioPutchar, 'i', 4);
  EXPECT_EQ(mem.console(), "hi");
  mem.store(kMmioWake, ~0u, 4);
  EXPECT_EQ(woken, ~0u);
}

TEST(Memory, AmoOperations) {
  ClusterMemory mem(TeraPoolConfig::tiny());
  mem.store(0x200, 10, 4);
  EXPECT_EQ(mem.amo(rv::AmoOp::kAdd, 0x200, 5).value, 10u);
  EXPECT_EQ(mem.load(0x200, 4).value, 15u);
  EXPECT_EQ(mem.amo(rv::AmoOp::kSwap, 0x200, 99).value, 15u);
  EXPECT_EQ(mem.load(0x200, 4).value, 99u);
  EXPECT_EQ(mem.amo(rv::AmoOp::kMax, 0x200, 50).value, 99u);
  EXPECT_EQ(mem.load(0x200, 4).value, 99u);
  mem.store(0x200, static_cast<u32>(-5), 4);
  EXPECT_EQ(mem.amo(rv::AmoOp::kMin, 0x200, 3).value, static_cast<u32>(-5));
  EXPECT_EQ(mem.load(0x200, 4).value, static_cast<u32>(-5));  // signed min keeps -5
  EXPECT_EQ(mem.amo(rv::AmoOp::kMinu, 0x200, 3).value, static_cast<u32>(-5));
  EXPECT_EQ(mem.load(0x200, 4).value, 3u);  // unsigned min takes 3
}

TEST(Memory, HostAccessRoundTripsThroughInterleaving) {
  ClusterMemory mem(TeraPoolConfig::tiny());
  std::vector<u8> data(257);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 3 + 1);
  mem.host_write(0x340 + 1, data);  // deliberately unaligned
  std::vector<u8> back(data.size());
  mem.host_read(0x341, back);
  EXPECT_EQ(back, data);
  // And the DUT-visible view agrees.
  EXPECT_EQ(mem.load(0x344, 1).value, data[3]);
}

TEST(Memory, ViewsAliasAcrossStoreAndLoad) {
  // Data written through one L1 view reads back through the other at the
  // seed aliasing relation (and vice versa) - on the DUT path and the host
  // bulk path alike.
  const TeraPoolConfig cfg = TeraPoolConfig::tiny();
  ClusterMemory mem(cfg);
  const u32 nbanks = cfg.num_banks();
  // Sequential word 5 of tile 1 -> bank/slot -> interleaved alias.
  const u32 tile = 1, wt = 5;
  const u32 seq_addr = kL1SequentialBase + tile * cfg.tile_l1_bytes + wt * 4;
  const u32 bank = tile * cfg.banks_per_tile + (wt % cfg.banks_per_tile);
  const u32 slot = wt / cfg.banks_per_tile;
  const u32 il_addr = kL1InterleavedBase + (slot * nbanks + bank) * 4;
  EXPECT_FALSE(mem.store(seq_addr, 0xCAFEF00D, 4));
  EXPECT_EQ(mem.load(il_addr, 4).value, 0xCAFEF00Du);
  EXPECT_EQ(mem.host_read_word(il_addr), 0xCAFEF00Du);
  mem.host_write_words(il_addr, std::array<u32, 1>{0xDEADBEEF});
  EXPECT_EQ(mem.load(seq_addr, 4).value, 0xDEADBEEFu);
}

TEST(Memory, BulkAccessorsAtRegionBoundary) {
  // The memcpy fast path must hold right up to the last interleaved word
  // and fall back cleanly for sequential-region spans (per-word route loop).
  const TeraPoolConfig cfg = TeraPoolConfig::tiny();
  ClusterMemory mem(cfg);
  const u32 end = cfg.l1_bytes();
  std::vector<u8> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i ^ 0x5A);
  mem.host_write(end - 64, data);
  std::vector<u8> back(64);
  mem.host_read(end - 64, back);
  EXPECT_EQ(back, data);
  // The very last word is DUT-visible at the matching interleaved address.
  EXPECT_EQ(mem.load(end - 4, 4).value, mem.host_read_word(end - 4));
  // A sequential-region span (not host-contiguous) round-trips too.
  const u32 seq = kL1SequentialBase + cfg.tile_l1_bytes - 32;
  std::vector<u8> sdata(48);  // crosses into the next tile's block
  for (size_t i = 0; i < sdata.size(); ++i) sdata[i] = static_cast<u8>(i * 7 + 3);
  mem.host_write(seq, sdata);
  std::vector<u8> sback(48);
  mem.host_read(seq, sback);
  EXPECT_EQ(sback, sdata);
  // Word accessors agree with the byte path in the sequential view.
  EXPECT_EQ(mem.host_read_word(seq), mem.load(seq, 4).value);
}

TEST(Memory, NonPow2BankCountRoundTrips) {
  TeraPoolConfig cfg = TeraPoolConfig::tiny();
  cfg.groups = 3;  // 48 banks: modulo routing path
  ClusterMemory mem(cfg);
  std::vector<u32> words(100);
  for (size_t i = 0; i < words.size(); ++i) words[i] = static_cast<u32>(i * 0x9E3779B9u);
  mem.host_write_words(0x40, words);
  for (size_t i = 0; i < words.size(); ++i)
    ASSERT_EQ(mem.load(0x40 + static_cast<u32>(i) * 4, 4).value, words[i]) << i;
}

TEST(Memory, L2HoldsProgramImage) {
  ClusterMemory mem(TeraPoolConfig::tiny());
  const std::vector<u32> words = {1, 2, 3, 4};
  mem.load_program(kL2Base, words);
  EXPECT_EQ(mem.fetch(kL2Base + 8).value, 3u);
  EXPECT_TRUE(mem.fetch(kL2Base + 2).fault);  // misaligned fetch
}

TEST(Memory, ResetL1PreservesL2) {
  ClusterMemory mem(TeraPoolConfig::tiny());
  mem.store(0x100, 42, 4);
  const std::vector<u32> words = {7};
  mem.load_program(kL2Base, words);
  mem.reset_l1();
  EXPECT_EQ(mem.load(0x100, 4).value, 0u);
  EXPECT_EQ(mem.load(kL2Base, 4).value, 7u);
}

TEST(Dma, CopiesBetweenRegionsAndReportsCycles) {
  ClusterMemory mem(TeraPoolConfig::tiny());
  Dma dma(mem);
  std::vector<u8> src(512);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<u8>(i);
  mem.host_write(kL2Base + 0x1000, src);
  const u64 cycles = dma.transfer(/*dst=*/0x400, /*src=*/kL2Base + 0x1000, 512);
  EXPECT_GT(cycles, 0u);
  std::vector<u8> out(512);
  mem.host_read(0x400, out);
  EXPECT_EQ(out, src);
  EXPECT_EQ(dma.busy_cycles(), cycles);
}

}  // namespace
}  // namespace tsim::tera
