// Multi-threaded host path coverage: Machine::run_threads must be
// functionally and cycle-wise bit-identical to the deterministic
// single-thread round-robin run(), for any host thread count, and
// McRunner(host_threads > 1) must reproduce the single-threaded BER points
// exactly for the same seed (machine.h's host-scheduling-independence
// contract).
#include <gtest/gtest.h>

#include "iss/machine.h"
#include "kernels/mmse_program.h"
#include "sim/cosim.h"
#include "sim/mc.h"

namespace tsim::sim {
namespace {

using kern::MmseLayout;
using kern::Precision;

MmseLayout eight_core_layout() {
  MmseLayout lay;
  lay.ntx = 4;
  lay.nrx = 4;
  lay.prec = Precision::k16CDotp;
  lay.problems_per_core = 1;
  lay.num_cores = 8;
  lay.cluster = tera::TeraPoolConfig::tiny();
  lay.validate();
  return lay;
}

Batch staged_batch(iss::Machine& machine, const MmseLayout& lay, u64 seed) {
  Rng rng(seed);
  phy::Channel ch(phy::ChannelType::kRayleigh, lay.nrx, lay.ntx);
  phy::QamModulator qam(16);
  Batch batch = generate_batch(ch, qam, lay.ntx, lay.num_cores, 12.0, rng);
  for (u32 c = 0; c < lay.num_cores; ++c) {
    stage_problem(machine.memory(), lay, c, 0, batch.problems[c]);
  }
  return batch;
}

TEST(Threading, RunThreadsMatchesRunBitForBitAndCycleForCycle) {
  const MmseLayout lay = eight_core_layout();
  const auto program = kern::build_mmse_program(lay);

  iss::Machine reference(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  reference.load_program(program);
  staged_batch(reference, lay, 42);
  ASSERT_TRUE(reference.run().exited);

  for (const u32 threads : {2u, 3u, 8u}) {
    iss::Machine machine(lay.cluster, iss::TimingConfig{}, lay.num_cores);
    machine.load_program(program);
    staged_batch(machine, lay, 42);
    const auto result = machine.run_threads(threads);
    ASSERT_TRUE(result.exited) << threads << " threads";
    EXPECT_FALSE(result.deadlock);
    // Architectural results match exactly.
    for (u32 c = 0; c < lay.num_cores; ++c) {
      EXPECT_EQ(read_xhat(machine.memory(), lay, c, 0),
                read_xhat(reference.memory(), lay, c, 0))
          << threads << " threads, core " << c;
    }
    // Per-hart cycle estimates agree up to the barrier-wake jitter (see
    // machine.h): which hart timestamps the wake is resolved by the
    // physical race, so allow a small relative tolerance.
    for (u32 h = 0; h < machine.num_harts(); ++h) {
      const double a = static_cast<double>(machine.hart(h).cycles());
      const double b = static_cast<double>(reference.hart(h).cycles());
      EXPECT_NEAR(a, b, 0.01 * b) << threads << " threads, hart " << h;
    }
    const double est = static_cast<double>(reference.estimated_cycles());
    EXPECT_NEAR(static_cast<double>(machine.estimated_cycles()), est, 0.01 * est);
  }
}

TEST(Threading, RunThreadsClampsThreadCountAboveHartCount) {
  const MmseLayout lay = eight_core_layout();
  iss::Machine machine(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  machine.load_program(kern::build_mmse_program(lay));
  staged_batch(machine, lay, 7);
  const auto result = machine.run_threads(1000);  // clamped to num_harts
  EXPECT_TRUE(result.exited);
  EXPECT_FALSE(result.deadlock);
}

// The superblock fast path (translation.h) must be bit- and cycle-identical
// to the per-instruction reference path. Setting a (no-op) trace hook forces
// the reference path, which performs one translation-cache lookup per
// instruction and ignores the precomputed run lengths entirely, so this
// exercises the superblock boundary computation end to end on a real
// barrier-synchronized MMSE workload.
TEST(Threading, SuperblockFastPathMatchesPerInstructionReference) {
  const MmseLayout lay = eight_core_layout();
  const auto program = kern::build_mmse_program(lay);

  iss::Machine fast(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  fast.load_program(program);
  staged_batch(fast, lay, 99);
  const auto rf = fast.run();
  ASSERT_TRUE(rf.exited);

  iss::Machine ref(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  ref.set_trace([](u32, u32, const rv::Decoded&) {});
  ref.load_program(program);
  staged_batch(ref, lay, 99);
  const auto rr = ref.run();
  ASSERT_TRUE(rr.exited);

  EXPECT_EQ(rf.exit_code, rr.exit_code);
  EXPECT_EQ(rf.instructions, rr.instructions);
  for (u32 c = 0; c < lay.num_cores; ++c) {
    EXPECT_EQ(read_xhat(fast.memory(), lay, c, 0), read_xhat(ref.memory(), lay, c, 0))
        << "core " << c;
  }
  for (u32 h = 0; h < fast.num_harts(); ++h) {
    EXPECT_EQ(fast.hart(h).cycles(), ref.hart(h).cycles()) << "hart " << h;
    EXPECT_EQ(fast.hart(h).instructions(), ref.hart(h).instructions()) << "hart " << h;
    EXPECT_EQ(fast.hart(h).raw_stall_cycles, ref.hart(h).raw_stall_cycles)
        << "hart " << h;
    EXPECT_EQ(fast.hart(h).wfi_stall_cycles, ref.hart(h).wfi_stall_cycles)
        << "hart " << h;
  }
  EXPECT_EQ(fast.estimated_cycles(), ref.estimated_cycles());
}

// The SPMD convergence-batch dispatch (machine.h) must be bit- and
// cycle-identical to the serial superblock path on the real barrier-
// synchronized MMSE workload - registers, detections, cycles, and stall
// accounting (the serial path is the oracle; the traced reference path is
// its oracle in turn, covered above).
TEST(Threading, BatchedDispatchMatchesSerialOnMmseWorkload) {
  const MmseLayout lay = eight_core_layout();
  const auto program = kern::build_mmse_program(lay);

  iss::Machine batched(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  ASSERT_TRUE(batched.batching());  // default on
  batched.load_program(program);
  staged_batch(batched, lay, 99);
  const auto rb = batched.run();
  ASSERT_TRUE(rb.exited);

  iss::Machine serial(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  serial.set_batching(false);
  serial.load_program(program);
  staged_batch(serial, lay, 99);
  const auto rs = serial.run();
  ASSERT_TRUE(rs.exited);

  EXPECT_EQ(rb.exit_code, rs.exit_code);
  EXPECT_EQ(rb.instructions, rs.instructions);
  for (u32 c = 0; c < lay.num_cores; ++c) {
    EXPECT_EQ(read_xhat(batched.memory(), lay, c, 0),
              read_xhat(serial.memory(), lay, c, 0))
        << "core " << c;
  }
  for (u32 h = 0; h < batched.num_harts(); ++h) {
    EXPECT_EQ(batched.hart(h).cycles(), serial.hart(h).cycles()) << "hart " << h;
    EXPECT_EQ(batched.hart(h).instructions(), serial.hart(h).instructions())
        << "hart " << h;
    EXPECT_EQ(batched.hart(h).raw_stall_cycles, serial.hart(h).raw_stall_cycles)
        << "hart " << h;
    EXPECT_EQ(batched.hart(h).wfi_stall_cycles, serial.hart(h).wfi_stall_cycles)
        << "hart " << h;
    EXPECT_EQ(batched.hart(h).state.x, serial.hart(h).state.x) << "hart " << h;
  }
  EXPECT_EQ(batched.estimated_cycles(), serial.estimated_cycles());
  // Most instructions took the lockstep path on this SPMD workload.
  EXPECT_GT(batched.batch_stats().lockstep_fraction(), 0.5);
  EXPECT_EQ(serial.batch_stats().batches, 0u);
}

// A convergence group spanning a run_threads shard boundary must simply
// split at it: batches form per shard (width capped by the shard size),
// functional results stay bit-identical to run(), and a single shard is
// exactly equivalent to its serial self.
TEST(Threading, RunThreadsShardBoundarySplitsConvergenceGroup) {
  const MmseLayout lay = eight_core_layout();
  const auto program = kern::build_mmse_program(lay);

  iss::Machine reference(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  reference.set_batching(false);
  reference.load_program(program);
  staged_batch(reference, lay, 123);
  ASSERT_TRUE(reference.run().exited);

  // Two shards of four harts: the eight-wide convergence group splits.
  iss::Machine sharded(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  sharded.load_program(program);
  staged_batch(sharded, lay, 123);
  const auto rt = sharded.run_threads(2);
  ASSERT_TRUE(rt.exited);
  EXPECT_FALSE(rt.deadlock);
  for (u32 c = 0; c < lay.num_cores; ++c) {
    EXPECT_EQ(read_xhat(sharded.memory(), lay, c, 0),
              read_xhat(reference.memory(), lay, c, 0))
        << "core " << c;
  }
  const auto& stats = sharded.batch_stats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_LE(stats.width_max, 4u);  // never wider than a shard
  // Cycle estimates agree up to the documented barrier-wake jitter.
  for (u32 h = 0; h < sharded.num_harts(); ++h) {
    const double a = static_cast<double>(sharded.hart(h).cycles());
    const double b = static_cast<double>(reference.hart(h).cycles());
    EXPECT_NEAR(a, b, 0.01 * b) << "hart " << h;
  }

  // One shard: run_threads(1) batched vs serial is exactly equal (no
  // cross-thread wake races exist to jitter the timestamps).
  iss::Machine one_batched(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  one_batched.load_program(program);
  staged_batch(one_batched, lay, 123);
  ASSERT_TRUE(one_batched.run_threads(1).exited);
  iss::Machine one_serial(lay.cluster, iss::TimingConfig{}, lay.num_cores);
  one_serial.set_batching(false);
  one_serial.load_program(program);
  staged_batch(one_serial, lay, 123);
  ASSERT_TRUE(one_serial.run_threads(1).exited);
  for (u32 h = 0; h < one_batched.num_harts(); ++h) {
    EXPECT_EQ(one_batched.hart(h).cycles(), one_serial.hart(h).cycles())
        << "hart " << h;
    EXPECT_EQ(one_batched.hart(h).instructions(), one_serial.hart(h).instructions())
        << "hart " << h;
    EXPECT_EQ(one_batched.hart(h).raw_stall_cycles, one_serial.hart(h).raw_stall_cycles)
        << "hart " << h;
    EXPECT_EQ(one_batched.hart(h).wfi_stall_cycles, one_serial.hart(h).wfi_stall_cycles)
        << "hart " << h;
  }
}

TEST(Threading, McRunnerHostThreadsProduceBitIdenticalBerPoints) {
  McConfig cfg;
  cfg.ntx = 4;
  cfg.nrx = 4;
  cfg.qam_order = 16;
  cfg.channel = phy::ChannelType::kRayleigh;
  cfg.target_errors = 50;
  cfg.max_bits = 60'000;
  cfg.problems_per_core = 2;

  McRunner single(cfg);
  const BerPoint ref = single.dut_point(Precision::k16CDotp, 10.0);
  ASSERT_GT(ref.bits, 0u);

  for (const u32 threads : {2u, 4u}) {
    McConfig threaded_cfg = cfg;
    threaded_cfg.host_threads = threads;
    McRunner threaded(threaded_cfg);
    const BerPoint p = threaded.dut_point(Precision::k16CDotp, 10.0);
    EXPECT_EQ(p.bits, ref.bits) << threads << " host threads";
    EXPECT_EQ(p.errors, ref.errors) << threads << " host threads";
    EXPECT_DOUBLE_EQ(p.ber, ref.ber) << threads << " host threads";
  }
}

TEST(Threading, McRunnerMultiThreadSweepIsDeterministic) {
  McConfig cfg;
  cfg.ntx = 4;
  cfg.nrx = 4;
  cfg.qam_order = 16;
  cfg.channel = phy::ChannelType::kAwgn;
  cfg.target_errors = 30;
  cfg.max_bits = 30'000;
  cfg.host_threads = 4;

  McRunner a(cfg);
  McRunner b(cfg);
  const auto sweep_a = a.dut_sweep(Precision::k16WDotp, {8.0, 12.0});
  const auto sweep_b = b.dut_sweep(Precision::k16WDotp, {8.0, 12.0});
  ASSERT_EQ(sweep_a.size(), sweep_b.size());
  for (size_t i = 0; i < sweep_a.size(); ++i) {
    EXPECT_EQ(sweep_a[i].errors, sweep_b[i].errors);
    EXPECT_EQ(sweep_a[i].bits, sweep_b[i].bits);
  }
}

}  // namespace
}  // namespace tsim::sim
