// Cycle-accurate cluster model tests: functional equivalence with the ISS,
// stall attribution, bank contention, I$ behaviour, and barriers.
#include <gtest/gtest.h>

#include <memory>

#include "iss/machine.h"
#include "rvasm/textasm.h"
#include "uarch/cluster_sim.h"

namespace tsim::uarch {
namespace {

rvasm::Program prog(const std::string& text) { return rvasm::assemble(text); }

std::unique_ptr<ClusterSim> make_sim(const std::string& text, u32 cores = 1,
                                     UarchConfig cfg = {}) {
  auto s = std::make_unique<ClusterSim>(tera::TeraPoolConfig::tiny(), cfg, cores);
  s->load_program(prog(text));
  return s;
}

TEST(Uarch, RunsToExit) {
  auto s = make_sim(R"(
    _start:
      li t0, 0x40000000
      li t1, 9
      sw t1, 0(t0)
  )");
  const auto r = s->run();
  EXPECT_TRUE(r.exited);
  EXPECT_EQ(r.exit_code, 9u);
  EXPECT_GT(r.cycles, 0u);
}

TEST(Uarch, CyclesExceedInstructions) {
  auto s = make_sim(R"(
    _start:
      li t0, 0x100
      lw t1, 0(t0)
      addi t1, t1, 1
      lw t2, 4(t0)
      addi t2, t2, 1
      ebreak
  )");
  const auto r = s->run();
  EXPECT_GT(r.cycles, r.instructions);
  const auto& st = s->core_stats(0);
  EXPECT_EQ(st.instructions, r.instructions);
  // The load-use dependencies must show up as lsu-classified stalls.
  EXPECT_GT(st.stall_lsu, 0u);
}

TEST(Uarch, FunctionalStateMatchesIss) {
  const std::string body = R"(
    _start:
      li t0, 0x100
      li t1, 0
      li t2, 25
    loop:
      add t1, t1, t2
      addi t2, t2, -1
      bnez t2, loop
      sw t1, 0(t0)
      fadd.h t3, t1, t2
      mul t4, t1, t1
      ebreak
  )";
  auto us = make_sim(body);
  us->run();
  iss::Machine im(tera::TeraPoolConfig::tiny(), iss::TimingConfig{}, 1);
  im.load_program(prog(body));
  im.run();
  for (u8 reg = 0; reg < 32; ++reg) {
    EXPECT_EQ(us->hart_state(0).x[reg], im.hart(0).state.x[reg]) << "x" << int(reg);
  }
  EXPECT_EQ(us->memory().host_read_word(0x100), im.memory().host_read_word(0x100));
}

TEST(Uarch, IcacheRefillsAreCounted) {
  // A straight-line program larger than one I$ line must refill at least twice.
  std::string body = "_start:\n";
  for (int i = 0; i < 64; ++i) body += "  addi t0, t0, 1\n";
  body += "  ebreak\n";
  auto s = make_sim(body);
  s->run();
  EXPECT_GT(s->core_stats(0).stall_ins, 0u);
}

TEST(Uarch, IcacheHitsOnLoops) {
  // A tight loop executes from the I$ after the first iteration: stall_ins
  // stays bounded by a couple of refills while cycles grow with the count.
  auto s = make_sim(R"(
    _start:
      li t0, 200
    loop:
      addi t0, t0, -1
      bnez t0, loop
      ebreak
  )");
  const auto r = s->run();
  EXPECT_GT(r.cycles, 400u);
  EXPECT_LT(s->core_stats(0).stall_ins, 100u);
}

TEST(Uarch, DivStructuralHazardCountsAccStalls) {
  auto s = make_sim(R"(
    _start:
      li t0, 100
      li t1, 7
      div t2, t0, t1
      div t3, t0, t2    # waits for both the result and the divider
      ebreak
  )");
  s->run();
  const auto& st = s->core_stats(0);
  EXPECT_GT(st.stall_raw + st.stall_acc, 10u);
}

TEST(Uarch, BankConflictsAreObserved) {
  // Two cores hammering the same bank (same interleaved word) must see
  // conflict cycles; the same accesses to different banks must not.
  const char* conflict = R"(
    _start:
      li t0, 0x100      # same word for both cores -> same bank
      li t2, 50
    loop:
      lw t1, 0(t0)
      addi t2, t2, -1
      bnez t2, loop
      ebreak
  )";
  auto s = make_sim(conflict, 2);
  s->run();
  EXPECT_GT(s->bank_conflict_cycles(), 0u);

  const char* disjoint = R"(
    _start:
      csrr t0, mhartid
      slli t0, t0, 2
      li t3, 0x100
      add t0, t0, t3    # word = 0x100 + 4*hartid -> different banks
      li t2, 50
    loop:
      lw t1, 0(t0)
      addi t2, t2, -1
      bnez t2, loop
      ebreak
  )";
  auto s2 = make_sim(disjoint, 2);
  s2->run();
  EXPECT_EQ(s2->bank_conflict_cycles(), 0u);
}

TEST(Uarch, BarrierProgramCompletesWithWfiStalls) {
  const char* barrier_prog = R"(
    _start:
      li t3, 0x80
      li t4, 1
      amoadd.w t5, t4, (t3)
      li t6, 3
      beq t5, t6, last
      wfi
      j after
    last:
      sw zero, 0(t3)
      li s2, 0x40000008
      li s3, -1
      sw s3, 0(s2)
    after:
      csrr t0, mhartid
      bnez t0, park
      li s6, 0x40000000
      sw zero, 0(s6)
    park:
      wfi
      j park
  )";
  auto s = make_sim(barrier_prog, 4);
  const auto r = s->run();
  EXPECT_TRUE(r.exited);
  CoreStats agg = s->aggregate_stats();
  EXPECT_GT(agg.stall_wfi, 0u);
}

TEST(Uarch, DeadlockDetection) {
  auto s = make_sim("_start:\n wfi\n j _start\n", 2);
  const auto r = s->run();
  EXPECT_TRUE(r.deadlock);
}

TEST(Uarch, AmoSerializationScalesWithCores) {
  // All cores amoadd the same address; the bank serializes them, so the
  // completion cycle must grow with the core count.
  const char* amoprog = R"(
    _start:
      li t0, 0x80
      li t1, 1
      amoadd.w t2, t1, (t0)
      csrr t3, mhartid
      bnez t3, park
      li t4, 0x40000000
      sw zero, 0(t4)
    park:
      wfi
      j park
  )";
  auto s2 = make_sim(amoprog, 2);
  auto s16 = make_sim(amoprog, 16);
  const u64 c2 = s2->run().cycles;
  // Hart 0 may exit before others arrive; compare aggregate grant pressure.
  const u64 conflicts2 = s2->bank_conflict_cycles();
  s16->run();
  const u64 conflicts16 = s16->bank_conflict_cycles();
  EXPECT_GE(conflicts16, conflicts2);
  EXPECT_GT(c2, 0u);
}

TEST(Uarch, StatsAggregateSumsCores) {
  auto s = make_sim(R"(
    _start:
      li t0, 10
    loop:
      addi t0, t0, -1
      bnez t0, loop
      ebreak
  )", 4);
  s->run();
  CoreStats agg = s->aggregate_stats();
  u64 sum = 0;
  for (u32 i = 0; i < 4; ++i) sum += s->core_stats(i).instructions;
  EXPECT_EQ(agg.instructions, sum);
  EXPECT_GT(agg.total_cycles(), 0u);
}

}  // namespace
}  // namespace tsim::uarch
